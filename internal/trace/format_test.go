package trace

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// golden is the expected decoding of each testdata file.
var golden = map[Format]struct {
	file string
	want []Request
}{
	FormatNative: {"native.trace", []Request{
		{Op: OpWrite, LPA: 0, Pages: 8, Arrival: 0},
		{Op: OpRead, LPA: 42, Pages: 1, Arrival: time.Millisecond},
		{Op: OpWrite, LPA: 1 << 20, Pages: 64, Arrival: 2500 * time.Microsecond},
		{Op: OpRead, LPA: 96, Pages: 4, Arrival: 2500 * time.Microsecond},
		{Op: OpWrite, LPA: 100, Pages: 1, Arrival: 7100 * time.Microsecond},
	}},
	FormatMSR: {"msr.csv", []Request{
		{Op: OpRead, LPA: 93627, Pages: 8, Arrival: 0},
		{Op: OpWrite, LPA: 719522, Pages: 2, Arrival: 50_980_400 * time.Nanosecond},
		{Op: OpWrite, LPA: 719524, Pages: 1, Arrival: 93_837_100 * time.Nanosecond},
		{Op: OpRead, LPA: 0, Pages: 4, Arrival: 103_837_100 * time.Nanosecond},
	}},
	FormatFIU: {"fiu.trace", []Request{
		{Op: OpWrite, LPA: 113033195, Pages: 1, Arrival: 0},
		{Op: OpWrite, LPA: 113033196, Pages: 2, Arrival: time.Second},
		{Op: OpRead, LPA: 1600, Pages: 1, Arrival: 11 * time.Second},
		{Op: OpRead, LPA: 1601, Pages: 3, Arrival: 21 * time.Second},
	}},
}

func TestGoldenDecode(t *testing.T) {
	for f, g := range golden {
		data, err := os.ReadFile(filepath.Join("testdata", g.file))
		if err != nil {
			t.Fatal(err)
		}
		got, err := Decode(bytes.NewReader(data), f, Options{})
		if err != nil {
			t.Fatalf("%s: %v", f, err)
		}
		if len(got) != len(g.want) {
			t.Fatalf("%s: decoded %d requests, want %d", f, len(got), len(g.want))
		}
		for i := range got {
			if got[i] != g.want[i] {
				t.Errorf("%s: request %d: got %+v, want %+v", f, i, got[i], g.want[i])
			}
		}
	}
}

// TestGoldenRoundTrip re-encodes each golden file in its own format and
// decodes it back: the requests must survive unchanged, and a second
// encode must be byte-identical to the first (the encoding is
// canonical).
func TestGoldenRoundTrip(t *testing.T) {
	for f, g := range golden {
		data, err := os.ReadFile(filepath.Join("testdata", g.file))
		if err != nil {
			t.Fatal(err)
		}
		first, err := Decode(bytes.NewReader(data), f, Options{})
		if err != nil {
			t.Fatalf("%s: %v", f, err)
		}
		var enc1 bytes.Buffer
		if err := Encode(&enc1, f, first, Options{}); err != nil {
			t.Fatalf("%s: encode: %v", f, err)
		}
		second, err := Decode(bytes.NewReader(enc1.Bytes()), f, Options{})
		if err != nil {
			t.Fatalf("%s: re-decode: %v", f, err)
		}
		if len(second) != len(first) {
			t.Fatalf("%s: round trip %d → %d requests", f, len(first), len(second))
		}
		for i := range first {
			if first[i] != second[i] {
				t.Errorf("%s: request %d changed in round trip: %+v → %+v", f, i, first[i], second[i])
			}
		}
		var enc2 bytes.Buffer
		if err := Encode(&enc2, f, second, Options{}); err != nil {
			t.Fatalf("%s: second encode: %v", f, err)
		}
		if !bytes.Equal(enc1.Bytes(), enc2.Bytes()) {
			t.Errorf("%s: encoding is not canonical", f)
		}
	}
}

func TestOpenAutoDetects(t *testing.T) {
	for f, g := range golden {
		reqs, detected, err := Open(filepath.Join("testdata", g.file), Options{})
		if err != nil {
			t.Fatalf("%s: %v", g.file, err)
		}
		if detected != f {
			t.Errorf("%s: detected %s, want %s", g.file, detected, f)
		}
		if len(reqs) != len(g.want) {
			t.Errorf("%s: %d requests, want %d", g.file, len(reqs), len(g.want))
		}
	}
	if _, _, err := Open(filepath.Join("testdata", "nonexistent.trace"), Options{}); err == nil {
		t.Error("Open accepted a missing file")
	}
}

func TestDetect(t *testing.T) {
	cases := []struct {
		in   string
		want Format
		ok   bool
	}{
		{"R,1,2\n", FormatNative, true},
		{"# comment\n\nW,1,2,3\n", FormatNative, true},
		{"128166372003061629,hm,0,Read,383496192,32768,1331\n", FormatMSR, true},
		{"Timestamp,Hostname,DiskNumber,Type,Offset,Size,ResponseTime\n", FormatMSR, true},
		{"329131208190249 4892 syslogd 904265560 8 W 6 0\n", FormatFIU, true},
		{"", FormatNative, false},
		{"one two three\n", FormatNative, false},
		{"a,b\n", FormatNative, false},
	}
	for _, c := range cases {
		got, err := Detect([]byte(c.in))
		if c.ok && err != nil {
			t.Errorf("Detect(%q): %v", c.in, err)
		}
		if !c.ok && err == nil {
			t.Errorf("Detect(%q) accepted", c.in)
		}
		if c.ok && got != c.want {
			t.Errorf("Detect(%q) = %s, want %s", c.in, got, c.want)
		}
	}
}

func TestFormatByName(t *testing.T) {
	for name, want := range map[string]Format{
		"native": FormatNative, "MSR": FormatMSR, "fiu": FormatFIU, "csv": FormatMSR, "blkparse": FormatFIU,
	} {
		got, err := FormatByName(name)
		if err != nil || got != want {
			t.Errorf("FormatByName(%q) = %v, %v; want %v", name, got, err, want)
		}
	}
	if _, err := FormatByName("parquet"); err == nil {
		t.Error("FormatByName accepted an unknown name")
	}
}

// TestMalformedInputs covers the ingestion failure modes: truncated
// lines, bad field values, and zero-size requests must error with the
// offending line number; non-monotonic timestamps are clamped, not
// errors.
func TestMalformedInputs(t *testing.T) {
	cases := []struct {
		format Format
		in     string
	}{
		{FormatMSR, "128166372003061629,hm,0,Read,383496192\n"},                   // truncated line
		{FormatMSR, "abc,hm,0,Read,0,4096,0\n"},                                   // bad timestamp
		{FormatMSR, "128166372003061629,hm,0,Erase,0,4096,0\n"},                   // bad op
		{FormatMSR, "128166372003061629,hm,0,Read,0,0,0\n"},                       // zero-size request
		{FormatMSR, "128166372003061629,hm,0,Read,-4096,4096,0\n"},                // negative offset
		{FormatMSR, "128166372003061629,hm,0,Read,18446744073709551615,4096,0\n"}, // offset overflow
		{FormatFIU, "329131208190249 4892 syslogd 904265560 8\n"},                 // truncated line
		{FormatFIU, "ts 4892 syslogd 904265560 8 W 6 0\n"},                        // bad timestamp
		{FormatFIU, "329131208190249 4892 syslogd 904265560 0 W 6 0\n"},           // zero-size request
		{FormatFIU, "329131208190249 4892 syslogd x 8 W 6 0\n"},                   // bad sector
		{FormatFIU, "329131208190249 4892 syslogd 904265560 8 T 6 0\n"},           // bad op
		{FormatNative, "W,1\n"},                                                   // truncated line
	}
	for _, c := range cases {
		if _, err := Decode(strings.NewReader(c.in), c.format, Options{}); err == nil {
			t.Errorf("%s: Decode(%q) accepted", c.format, strings.TrimSpace(c.in))
		} else if !strings.Contains(err.Error(), "line 1") {
			t.Errorf("%s: Decode(%q) error %q does not name the line", c.format, strings.TrimSpace(c.in), err)
		}
	}
}

func TestNonMonotonicTimestampsClamped(t *testing.T) {
	in := "W,0,1,5000\nW,1,1,3000\nW,2,1,9000\n"
	got, err := Decode(strings.NewReader(in), FormatNative, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Rebased to the first arrival (5µs); the backward jump clamps to 0.
	want := []time.Duration{0, 0, 4000}
	for i, w := range want {
		if got[i].Arrival != w {
			t.Errorf("request %d: arrival %v, want %v", i, got[i].Arrival, w)
		}
	}
	prev := time.Duration(-1)
	for i, r := range got {
		if r.Arrival < prev {
			t.Errorf("request %d: arrival %v went backward", i, r.Arrival)
		}
		prev = r.Arrival
	}
}

func TestFitTo(t *testing.T) {
	in := []Request{
		{Op: OpWrite, LPA: 10, Pages: 4},         // already fits
		{Op: OpRead, LPA: 113_033_195, Pages: 2}, // folded modulo capacity
		{Op: OpRead, LPA: 1023, Pages: 8},        // folds, then clamps to the end
	}
	got, err := FitTo(in, 1024)
	if err != nil {
		t.Fatal(err)
	}
	want := []Request{
		{Op: OpWrite, LPA: 10, Pages: 4},
		{Op: OpRead, LPA: 113_033_195 % 1024, Pages: 2},
		{Op: OpRead, LPA: 1016, Pages: 8},
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("request %d: got %+v, want %+v", i, got[i], want[i])
		}
	}
	if in[2].LPA != 1023 {
		t.Error("FitTo modified its input")
	}
	if _, err := FitTo([]Request{{Op: OpRead, LPA: 0, Pages: 2048}}, 1024); err == nil {
		t.Error("oversized request accepted")
	}
	if _, err := FitTo(nil, 0); err == nil {
		t.Error("zero-page device accepted")
	}
}

func TestDecodeOptionsPageSize(t *testing.T) {
	// 16KB pages: a 16384-byte extent at offset 16384 is one page at LPA 1.
	in := "100,h,0,Read,16384,16384,0\n"
	got, err := Decode(strings.NewReader(in), FormatMSR, Options{PageSize: 16384})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].LPA != 1 || got[0].Pages != 1 {
		t.Errorf("got %+v", got)
	}
}
