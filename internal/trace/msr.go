package trace

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
	"time"

	"leaftl/internal/addr"
)

// MSR Cambridge CSV (SNIA IOTTA block traces, the paper's §4.1
// simulator workloads):
//
//	Timestamp,Hostname,DiskNumber,Type,Offset,Size,ResponseTime
//	128166372003061629,hm,0,Read,383496192,32768,1331
//
// Timestamp and ResponseTime are Windows filetime ticks (100ns);
// Offset and Size are bytes. Requests are normalized to the pages the
// byte extent covers; ResponseTime is the traced disk's service time,
// not a property of the replayed device, and is dropped.

// filetimeTick is the unit of MSR timestamps.
const filetimeTick = 100 * time.Nanosecond

// msrEpoch is the base timestamp encodeMSR writes (an arbitrary
// filetime; Decode rebases to the first record, so only differences
// matter).
const msrEpoch = 128166372000000000

func decodeMSR(r io.Reader, o Options) ([]Request, error) {
	// Arrivals are rebased against the first record in tick space:
	// converting a raw filetime (~1.28e17 ticks for the 2007 captures)
	// straight to time.Duration would overflow int64 nanoseconds, and
	// records wrapping by different amounts would corrupt their spacing.
	var base uint64
	haveBase := false
	return decodeLines(r, "msr", func(line string) (Request, bool, error) {
		parts := strings.Split(line, ",")
		if len(parts) < 6 {
			return Request{}, false, fmt.Errorf("want at least 6 fields, got %d", len(parts))
		}
		if strings.EqualFold(strings.TrimSpace(parts[0]), "timestamp") {
			return Request{}, false, nil // column-name header
		}
		ts, err := strconv.ParseUint(strings.TrimSpace(parts[0]), 10, 64)
		if err != nil {
			return Request{}, false, fmt.Errorf("bad timestamp: %w", err)
		}
		op, err := parseOpWord(parts[3])
		if err != nil {
			return Request{}, false, err
		}
		offset, err := strconv.ParseInt(strings.TrimSpace(parts[4]), 10, 64)
		if err != nil {
			return Request{}, false, fmt.Errorf("bad offset: %w", err)
		}
		size, err := strconv.ParseInt(strings.TrimSpace(parts[5]), 10, 64)
		if err != nil {
			return Request{}, false, fmt.Errorf("bad size: %w", err)
		}
		req, err := byteRequest(op, offset, size, o.PageSize)
		if err != nil {
			return Request{}, false, err
		}
		if !haveBase {
			base, haveBase = ts, true
		}
		var delta uint64
		if ts > base {
			delta = ts - base // backward jitter clamps to the base
		}
		if delta > uint64(math.MaxInt64)/uint64(filetimeTick) {
			return Request{}, false, fmt.Errorf("timestamp %d is %d ticks past the trace start; span unrepresentable", ts, delta)
		}
		req.Arrival = time.Duration(delta) * filetimeTick
		return req, true, nil
	})
}

func encodeMSR(w io.Writer, reqs []Request, o Options) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintln(bw, "Timestamp,Hostname,DiskNumber,Type,Offset,Size,ResponseTime"); err != nil {
		return err
	}
	for _, r := range reqs {
		op := "Write"
		if r.Op == OpRead {
			op = "Read"
		}
		ts := uint64(msrEpoch) + uint64(r.Arrival/filetimeTick)
		offset := int64(r.LPA) * int64(o.PageSize)
		size := int64(r.Pages) * int64(o.PageSize)
		if _, err := fmt.Fprintf(bw, "%d,leaftl,0,%s,%d,%d,0\n", ts, op, offset, size); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// parseOpWord accepts the op spellings of the byte-granular formats:
// "Read"/"Write" (MSR), "R"/"W" (FIU), case-insensitive.
func parseOpWord(s string) (Op, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "read", "r":
		return OpRead, nil
	case "write", "w":
		return OpWrite, nil
	default:
		return 0, fmt.Errorf("bad op %q", strings.TrimSpace(s))
	}
}

// byteRequest normalizes a byte extent to a page-granular request,
// rejecting empty and unrepresentable extents.
func byteRequest(op Op, offset, size int64, pageSize int) (Request, error) {
	if offset < 0 {
		return Request{}, fmt.Errorf("negative offset %d", offset)
	}
	if size <= 0 {
		return Request{}, fmt.Errorf("zero-size request (size %d)", size)
	}
	lpa, pages := pageSpan(offset, size, pageSize)
	if lpa+int64(pages) > math.MaxUint32 {
		return Request{}, fmt.Errorf("extent [%d,%d) beyond the 32-bit page address space", offset, offset+size)
	}
	return Request{Op: op, LPA: addr.LPA(lpa), Pages: pages}, nil
}
