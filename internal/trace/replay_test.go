package trace

import (
	"errors"
	"testing"
	"time"

	"leaftl/internal/addr"
)

// clockedDev is a deterministic ClockedDevice: every request takes
// `service` on a virtual clock that only moves via AdvanceTo and
// request service.
type clockedDev struct {
	now     time.Duration
	service time.Duration
	ops     int
}

func (f *clockedDev) Read(lpa addr.LPA, pages int) (time.Duration, error) {
	f.ops++
	f.now += f.service
	return f.service, nil
}

func (f *clockedDev) Write(lpa addr.LPA, pages int) (time.Duration, error) {
	return f.Read(lpa, pages)
}

func (f *clockedDev) Now() time.Duration { return f.now }

func (f *clockedDev) AdvanceTo(t time.Duration) {
	if t > f.now {
		f.now = t
	}
}

func TestReplayOpenLoopSingleQueue(t *testing.T) {
	d := &clockedDev{service: 10 * time.Microsecond}
	reqs := []Request{
		{Op: OpWrite, LPA: 0, Pages: 1, Arrival: 0},
		{Op: OpRead, LPA: 1, Pages: 1, Arrival: 5 * time.Microsecond},
		{Op: OpRead, LPA: 2, Pages: 1, Arrival: 100 * time.Microsecond},
	}
	res, err := ReplayOpenLoop(d, reqs, OpenLoopConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Requests != 3 || res.Reads != 2 || res.Writes != 1 {
		t.Errorf("counts %d/%d/%d", res.Requests, res.Reads, res.Writes)
	}
	// Request 1 arrives at 5µs but queues behind request 0 (busy until
	// 10µs): latency 15µs. Request 2 finds an idle device: 10µs.
	if got := res.Latency.Summary().Peak; got != 15*time.Microsecond {
		t.Errorf("max latency %v, want 15µs", got)
	}
	if res.Elapsed != 110*time.Microsecond {
		t.Errorf("elapsed %v, want 110µs", res.Elapsed)
	}
	if got := res.QueueWait.Summary().Peak; got != 5*time.Microsecond {
		t.Errorf("max queue wait %v, want 5µs", got)
	}
}

func TestReplayOpenLoopMultiQueue(t *testing.T) {
	d := &clockedDev{service: 10 * time.Microsecond}
	reqs := []Request{
		{Op: OpRead, LPA: 0, Pages: 1, Arrival: 0},
		{Op: OpRead, LPA: 1, Pages: 1, Arrival: 5 * time.Microsecond},
	}
	res, err := ReplayOpenLoop(d, reqs, OpenLoopConfig{Queues: 2})
	if err != nil {
		t.Fatal(err)
	}
	// With its own queue, request 1 starts at its arrival: no queue wait.
	if got := res.QueueWait.Summary().Peak; got != 0 {
		t.Errorf("max queue wait %v, want 0", got)
	}
	if got := res.Latency.Summary().Peak; got != 10*time.Microsecond {
		t.Errorf("max latency %v, want 10µs", got)
	}
}

func TestReplayOpenLoopSpeedup(t *testing.T) {
	d := &clockedDev{service: time.Microsecond}
	reqs := []Request{
		{Op: OpRead, LPA: 0, Pages: 1, Arrival: 0},
		{Op: OpRead, LPA: 1, Pages: 1, Arrival: 100 * time.Microsecond},
	}
	res, err := ReplayOpenLoop(d, reqs, OpenLoopConfig{Speedup: 2})
	if err != nil {
		t.Fatal(err)
	}
	// The second arrival compresses to 50µs; it finds an idle queue.
	if res.Elapsed != 51*time.Microsecond {
		t.Errorf("elapsed %v, want 51µs", res.Elapsed)
	}
}

func TestReplayOpenLoopInterarrival(t *testing.T) {
	d := &clockedDev{service: time.Microsecond}
	reqs := []Request{ // untimed trace
		{Op: OpRead, LPA: 0, Pages: 1},
		{Op: OpRead, LPA: 1, Pages: 1},
		{Op: OpRead, LPA: 2, Pages: 1},
	}
	res, err := ReplayOpenLoop(d, reqs, OpenLoopConfig{Interarrival: 20 * time.Microsecond})
	if err != nil {
		t.Fatal(err)
	}
	if res.Elapsed != 41*time.Microsecond {
		t.Errorf("elapsed %v, want 41µs", res.Elapsed)
	}
	if got := res.IOPS(); got < 70_000 || got > 75_000 {
		t.Errorf("IOPS %v, want ~73k", got)
	}
}

func TestReplayOpenLoopAdvancesClock(t *testing.T) {
	d := &clockedDev{service: time.Microsecond}
	reqs := []Request{
		{Op: OpRead, LPA: 0, Pages: 1, Arrival: 0},
		{Op: OpRead, LPA: 1, Pages: 1, Arrival: time.Second},
	}
	if _, err := ReplayOpenLoop(d, reqs, OpenLoopConfig{}); err != nil {
		t.Fatal(err)
	}
	// The device idled through the 1s arrival gap.
	if d.now != time.Second+time.Microsecond {
		t.Errorf("device clock %v, want 1.000001s", d.now)
	}
}

func TestReplayOpenLoopAdvancesWarmedClock(t *testing.T) {
	// A device warmed before replay sits far along its own clock; the
	// trace-relative idle gap must still advance it (offset from its
	// position at replay start), not be swallowed by the comparison
	// against absolute time.
	d := &clockedDev{service: time.Microsecond, now: time.Hour}
	reqs := []Request{
		{Op: OpRead, LPA: 0, Pages: 1, Arrival: 0},
		{Op: OpRead, LPA: 1, Pages: 1, Arrival: time.Second},
	}
	if _, err := ReplayOpenLoop(d, reqs, OpenLoopConfig{}); err != nil {
		t.Fatal(err)
	}
	if d.now != time.Hour+time.Second+time.Microsecond {
		t.Errorf("device clock %v, want 1h0m1.000001s", d.now)
	}
}

func TestReplayOpenLoopInterarrivalSpeedup(t *testing.T) {
	d := &clockedDev{service: time.Microsecond}
	reqs := []Request{
		{Op: OpRead, LPA: 0, Pages: 1},
		{Op: OpRead, LPA: 1, Pages: 1},
	}
	res, err := ReplayOpenLoop(d, reqs, OpenLoopConfig{Interarrival: 20 * time.Microsecond, Speedup: 2})
	if err != nil {
		t.Fatal(err)
	}
	// The 20µs spacing compresses to 10µs.
	if res.Elapsed != 11*time.Microsecond {
		t.Errorf("elapsed %v, want 11µs", res.Elapsed)
	}
}

// queueDev is a deterministic QueueDevice fake: each queue serves its
// submissions in order at a fixed service time, stamping completions
// the way a real multi-queue front end would.
type queueDev struct {
	queues    int
	service   time.Duration
	subs      [][]queueSub
	drained   bool
	firstErr  error
	submitErr error
}

type queueSub struct {
	write   bool
	lpa     addr.LPA
	pages   int
	arrival time.Duration
}

func newQueueDev(queues int, service time.Duration) *queueDev {
	return &queueDev{queues: queues, service: service, subs: make([][]queueSub, queues)}
}

func (f *queueDev) Read(lpa addr.LPA, pages int) (time.Duration, error)  { return f.service, nil }
func (f *queueDev) Write(lpa addr.LPA, pages int) (time.Duration, error) { return f.service, nil }
func (f *queueDev) QueueCount() int                                      { return f.queues }

func (f *queueDev) Submit(q int, write bool, lpa addr.LPA, pages int, arrival time.Duration) error {
	if f.submitErr != nil {
		return f.submitErr
	}
	f.subs[q] = append(f.subs[q], queueSub{write, lpa, pages, arrival})
	return nil
}

func (f *queueDev) Drain() error { f.drained = true; return nil }

func (f *queueDev) Completions(q int, fn func(write bool, arrival, start, complete time.Duration, err error)) {
	var free time.Duration
	for _, s := range f.subs[q] {
		start := s.arrival
		if free > start {
			start = free
		}
		complete := start + f.service
		free = complete
		fn(s.write, s.arrival, start, complete, nil)
	}
}

func (f *queueDev) FirstError() error { return f.firstErr }

func TestReplayOpenLoopQueueDevice(t *testing.T) {
	d := newQueueDev(2, 10*time.Microsecond)
	reqs := []Request{
		{Op: OpWrite, LPA: 0, Pages: 1, Arrival: 0},
		{Op: OpRead, LPA: 1, Pages: 1, Arrival: 0},
		{Op: OpRead, LPA: 2, Pages: 1, Arrival: 5 * time.Microsecond},
		{Op: OpRead, LPA: 3, Pages: 1, Arrival: 5 * time.Microsecond},
	}
	res, err := ReplayOpenLoop(d, reqs, OpenLoopConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if !d.drained {
		t.Error("replay never drained the queue device")
	}
	// Round-robin: queue 0 got requests 0 and 2, queue 1 got 1 and 3.
	if len(d.subs[0]) != 2 || len(d.subs[1]) != 2 {
		t.Fatalf("submissions split %d/%d, want 2/2", len(d.subs[0]), len(d.subs[1]))
	}
	if d.subs[0][1].lpa != 2 || d.subs[1][1].lpa != 3 {
		t.Errorf("round-robin order broken: q0=%v q1=%v", d.subs[0], d.subs[1])
	}
	if res.Requests != 4 || res.Reads != 3 || res.Writes != 1 {
		t.Errorf("counts %d/%d/%d, want 4/3/1", res.Requests, res.Reads, res.Writes)
	}
	// Request 2 arrives at 5µs but waits behind request 0 (queue 0 busy
	// until 10µs): 5µs wait, 15µs latency, complete at 20µs = makespan.
	if got := res.QueueWait.Summary().Peak; got != 5*time.Microsecond {
		t.Errorf("max queue wait %v, want 5µs", got)
	}
	if got := res.Latency.Summary().Peak; got != 15*time.Microsecond {
		t.Errorf("max latency %v, want 15µs", got)
	}
	if res.Elapsed != 20*time.Microsecond {
		t.Errorf("elapsed %v, want 20µs", res.Elapsed)
	}
}

func TestReplayOpenLoopQueueDeviceSpeedup(t *testing.T) {
	d := newQueueDev(1, time.Microsecond)
	reqs := []Request{
		{Op: OpRead, LPA: 0, Pages: 1, Arrival: 0},
		{Op: OpRead, LPA: 1, Pages: 1, Arrival: 100 * time.Microsecond},
	}
	if _, err := ReplayOpenLoop(d, reqs, OpenLoopConfig{Speedup: 2}); err != nil {
		t.Fatal(err)
	}
	// Arrival scaling happens before submission, same as the simulated path.
	if got := d.subs[0][1].arrival; got != 50*time.Microsecond {
		t.Errorf("submitted arrival %v, want 50µs", got)
	}
}

func TestReplayOpenLoopQueueDeviceErrors(t *testing.T) {
	d := newQueueDev(1, time.Microsecond)
	d.firstErr = errSentinel
	reqs := []Request{{Op: OpRead, LPA: 0, Pages: 1}}
	if _, err := ReplayOpenLoop(d, reqs, OpenLoopConfig{}); !errors.Is(err, errSentinel) {
		t.Errorf("completion error not propagated: %v", err)
	}
	d = newQueueDev(1, time.Microsecond)
	d.submitErr = errSentinel
	if _, err := ReplayOpenLoop(d, reqs, OpenLoopConfig{}); !errors.Is(err, errSentinel) {
		t.Errorf("submit error not propagated: %v", err)
	}
}

var errSentinel = errors.New("queue device failure")

func TestReplayOpenLoopPropagatesError(t *testing.T) {
	d := &fakeDev{failAt: 2}
	reqs := []Request{{Op: OpWrite, LPA: 0, Pages: 1}, {Op: OpRead, LPA: 0, Pages: 1}}
	if _, err := ReplayOpenLoop(d, reqs, OpenLoopConfig{}); err == nil {
		t.Fatal("error swallowed")
	}
}
