// Package trace ingests and replays block I/O traces. It speaks three
// wire formats — the repo's native "R,<lpa>,<pages>[,<arrival_ns>]"
// lines, MSR Cambridge CSV, and FIU/blkparse-style records (see
// docs/TRACES.md) — normalizing all of them into page-granular Requests
// with arrival timestamps. Open auto-detects the format; Replay drives a
// device closed-loop and ReplayOpenLoop dispatches at trace-recorded
// arrival times across host queues, the paper's §4.1 evaluation setup.
package trace

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
	"time"

	"leaftl/internal/addr"
)

// Op is a request direction.
type Op byte

// Request directions.
const (
	OpRead  Op = 'R'
	OpWrite Op = 'W'
)

// Request is one block I/O request in page units. Arrival is the
// request's submission time relative to the start of the trace; a trace
// whose requests all carry zero arrivals is untimed and can only be
// replayed closed-loop.
type Request struct {
	Op      Op
	LPA     addr.LPA
	Pages   int
	Arrival time.Duration
}

// String renders the request in native trace-file syntax (the timed
// four-field form when the request carries an arrival).
func (r Request) String() string {
	if r.Arrival != 0 {
		return fmt.Sprintf("%c,%d,%d,%d", r.Op, r.LPA, r.Pages, r.Arrival.Nanoseconds())
	}
	return fmt.Sprintf("%c,%d,%d", r.Op, r.LPA, r.Pages)
}

// Timed reports whether any request in the trace carries a nonzero
// arrival timestamp.
func Timed(reqs []Request) bool {
	for _, r := range reqs {
		if r.Arrival != 0 {
			return true
		}
	}
	return false
}

// Span returns the arrival time of the last request — the trace's
// recorded duration (zero for untimed traces).
func Span(reqs []Request) time.Duration {
	if len(reqs) == 0 {
		return 0
	}
	return reqs[len(reqs)-1].Arrival
}

// Write streams requests in untimed native syntax ("R,<lpa>,<pages>"),
// dropping arrival timestamps. Use Encode with FormatNative to preserve
// them.
func Write(w io.Writer, reqs []Request) error {
	bw := bufio.NewWriter(w)
	for _, r := range reqs {
		if _, err := fmt.Fprintf(bw, "%c,%d,%d\n", r.Op, r.LPA, r.Pages); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Parse reads a native-format trace. Blank lines and lines starting with
// '#' are skipped. Both the three-field untimed and four-field timed
// line forms are accepted.
func Parse(r io.Reader) ([]Request, error) {
	return decodeLines(r, "trace", parseNativeLine)
}

// decodeLines runs a per-line decoder over r, skipping blanks and
// '#'-comments and prefixing errors with the line number. Decoders
// return ok=false to skip a non-request line (e.g. a CSV header).
func decodeLines(r io.Reader, what string, line func(string) (Request, bool, error)) ([]Request, error) {
	var out []Request
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		req, ok, err := line(text)
		if err != nil {
			return nil, fmt.Errorf("%s: line %d: %w", what, lineNo, err)
		}
		if ok {
			out = append(out, req)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("%s: %w", what, err)
	}
	return out, nil
}

func parseNativeLine(line string) (Request, bool, error) {
	parts := strings.Split(line, ",")
	if len(parts) != 3 && len(parts) != 4 {
		return Request{}, false, fmt.Errorf("want 3 or 4 fields, got %d", len(parts))
	}
	opStr := strings.TrimSpace(parts[0])
	var op Op
	switch opStr {
	case "R", "r":
		op = OpRead
	case "W", "w":
		op = OpWrite
	default:
		return Request{}, false, fmt.Errorf("bad op %q", opStr)
	}
	lpa, err := strconv.ParseUint(strings.TrimSpace(parts[1]), 10, 32)
	if err != nil {
		return Request{}, false, fmt.Errorf("bad lpa: %w", err)
	}
	pages, err := strconv.Atoi(strings.TrimSpace(parts[2]))
	if err != nil {
		return Request{}, false, fmt.Errorf("bad page count: %w", err)
	}
	if pages <= 0 {
		return Request{}, false, fmt.Errorf("page count %d not positive", pages)
	}
	req := Request{Op: op, LPA: addr.LPA(lpa), Pages: pages}
	if len(parts) == 4 {
		ns, err := strconv.ParseInt(strings.TrimSpace(parts[3]), 10, 64)
		if err != nil {
			return Request{}, false, fmt.Errorf("bad arrival: %w", err)
		}
		if ns < 0 {
			return Request{}, false, fmt.Errorf("arrival %dns negative", ns)
		}
		req.Arrival = time.Duration(ns)
	}
	return req, true, nil
}
