// Package trace defines the block I/O trace format the harness replays:
// a line-oriented text format ("R,<lpa>,<pages>" / "W,<lpa>,<pages>"),
// standing in for the MSR Cambridge and FIU trace files the paper uses
// (§4.1), which are not redistributable. Package workload generates
// traces with the same structural characteristics.
package trace

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"leaftl/internal/addr"
)

// Op is a request direction.
type Op byte

// Request directions.
const (
	OpRead  Op = 'R'
	OpWrite Op = 'W'
)

// Request is one block I/O request in page units.
type Request struct {
	Op    Op
	LPA   addr.LPA
	Pages int
}

// String renders the request in trace-file syntax.
func (r Request) String() string {
	return fmt.Sprintf("%c,%d,%d", r.Op, r.LPA, r.Pages)
}

// Write streams requests in trace-file syntax.
func Write(w io.Writer, reqs []Request) error {
	bw := bufio.NewWriter(w)
	for _, r := range reqs {
		if _, err := fmt.Fprintf(bw, "%c,%d,%d\n", r.Op, r.LPA, r.Pages); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Parse reads a trace. Blank lines and lines starting with '#' are
// skipped.
func Parse(r io.Reader) ([]Request, error) {
	var out []Request
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		req, err := parseLine(line)
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: %w", lineNo, err)
		}
		out = append(out, req)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("trace: %w", err)
	}
	return out, nil
}

func parseLine(line string) (Request, error) {
	parts := strings.Split(line, ",")
	if len(parts) != 3 {
		return Request{}, fmt.Errorf("want 3 fields, got %d", len(parts))
	}
	opStr := strings.TrimSpace(parts[0])
	var op Op
	switch opStr {
	case "R", "r":
		op = OpRead
	case "W", "w":
		op = OpWrite
	default:
		return Request{}, fmt.Errorf("bad op %q", opStr)
	}
	lpa, err := strconv.ParseUint(strings.TrimSpace(parts[1]), 10, 32)
	if err != nil {
		return Request{}, fmt.Errorf("bad lpa: %w", err)
	}
	pages, err := strconv.Atoi(strings.TrimSpace(parts[2]))
	if err != nil {
		return Request{}, fmt.Errorf("bad page count: %w", err)
	}
	if pages <= 0 {
		return Request{}, fmt.Errorf("page count %d not positive", pages)
	}
	return Request{Op: op, LPA: addr.LPA(lpa), Pages: pages}, nil
}
