package trace

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// The fuzz targets harden the decoder surface: whatever bytes arrive,
// decoding must never panic, and any trace a decoder accepts must
// round-trip through the canonical encoder for its format — encode the
// decoded requests, decode the encoding, and get the same requests
// back. Decode output is canonical (page-granular, arrivals rebased to
// zero and monotonically non-decreasing), so a second decode is a
// fixpoint; a round-trip mismatch means an encoder and decoder disagree
// about the wire format.
//
// Run the full campaign with e.g.
//
//	go test ./internal/trace -run '^$' -fuzz '^FuzzMSR$' -fuzztime 60s

// seedCorpus feeds the checked-in golden traces plus a few handwritten
// edge lines to a fuzz target.
func seedCorpus(f *testing.F, files []string, extra []string) {
	f.Helper()
	for _, name := range files {
		data, err := os.ReadFile(filepath.Join("testdata", name))
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data)
	}
	for _, line := range extra {
		f.Add([]byte(line))
	}
}

// roundTrip asserts Decode(Encode(reqs)) == reqs for the format.
func roundTrip(t *testing.T, format Format, reqs []Request) {
	t.Helper()
	var buf bytes.Buffer
	if err := Encode(&buf, format, reqs, Options{}); err != nil {
		t.Fatalf("%v: encode of accepted trace failed: %v", format, err)
	}
	again, err := Decode(bytes.NewReader(buf.Bytes()), format, Options{})
	if err != nil {
		t.Fatalf("%v: decode of canonical encoding failed: %v\nencoding:\n%s", format, err, buf.Bytes())
	}
	if len(again) != len(reqs) {
		t.Fatalf("%v: round-trip length %d != %d", format, len(again), len(reqs))
	}
	for i := range reqs {
		if again[i] != reqs[i] {
			t.Fatalf("%v: round-trip request %d = %+v, want %+v", format, i, again[i], reqs[i])
		}
	}
}

// FuzzOpen exercises the auto-detection path (what trace.Open runs on a
// file's contents): detect the format from the sample, decode with the
// detected format, and round-trip whatever was accepted.
func FuzzOpen(f *testing.F) {
	seedCorpus(f,
		[]string{"native.trace", "msr.csv", "fiu.trace"},
		[]string{
			"R,1,2\nW,3,4,99\n",
			"# comment only\n",
			"128166372003061629,hm,0,Read,383496192,32768,1331\n",
			"329131208190249 4892 syslogd 904265560 8 W 6 0\n",
		})
	f.Fuzz(func(t *testing.T, data []byte) {
		sample := data
		if len(sample) > 1<<14 {
			sample = sample[:1<<14] // Open peeks at most 16KiB
		}
		format, err := Detect(sample)
		if err != nil {
			return
		}
		reqs, err := Decode(bytes.NewReader(data), format, Options{})
		if err != nil {
			return
		}
		roundTrip(t, format, reqs)
	})
}

// FuzzMSR hardens the MSR Cambridge CSV decoder.
func FuzzMSR(f *testing.F) {
	seedCorpus(f,
		[]string{"msr.csv"},
		[]string{
			"Timestamp,Hostname,DiskNumber,Type,Offset,Size,ResponseTime\n",
			"0,h,0,write,0,1,0\n",
			"18446744073709551615,h,0,Read,4095,8194,900\n",
			"1,h,0,Read,-1,10,0\n",
		})
	f.Fuzz(func(t *testing.T, data []byte) {
		reqs, err := Decode(bytes.NewReader(data), FormatMSR, Options{})
		if err != nil {
			return
		}
		roundTrip(t, FormatMSR, reqs)
	})
}

// FuzzFIU hardens the FIU/blkparse decoder.
func FuzzFIU(f *testing.F) {
	seedCorpus(f,
		[]string{"fiu.trace"},
		[]string{
			"329131208190249 4892 syslogd 904265560 8 W 6 0 f3a5d6e8\n",
			"0 0 p 0 1 r 0 0\n",
			"18446744073709551615 1 p 7 9 W 0 0\n",
			"5 1 p -4 8 W 0 0\n",
		})
	f.Fuzz(func(t *testing.T, data []byte) {
		reqs, err := Decode(bytes.NewReader(data), FormatFIU, Options{})
		if err != nil {
			return
		}
		roundTrip(t, FormatFIU, reqs)
	})
}

// FuzzNative hardens the native line decoder (Parse is also what
// tracegen output re-enters through).
func FuzzNative(f *testing.F) {
	seedCorpus(f,
		[]string{"native.trace"},
		[]string{
			"R,1,2\n",
			"w,4294967295,1,0\n",
			"W,1,2,9223372036854775807\n",
		})
	f.Fuzz(func(t *testing.T, data []byte) {
		reqs, err := Decode(bytes.NewReader(data), FormatNative, Options{})
		if err != nil {
			return
		}
		roundTrip(t, FormatNative, reqs)
	})
}
