package trace

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"time"

	"leaftl/internal/addr"
)

// Format identifies a trace wire format.
type Format int

// Supported trace formats. See docs/TRACES.md for the field layout,
// units, and provenance of each.
const (
	// FormatNative is the repo's line format:
	// "R,<lpa>,<pages>[,<arrival_ns>]".
	FormatNative Format = iota
	// FormatMSR is the MSR Cambridge block-trace CSV the paper evaluates
	// on (§4.1): timestamp,hostname,disk,type,offset,size,latency with
	// byte offsets and Windows-filetime (100ns tick) timestamps.
	FormatMSR
	// FormatFIU is the FIU/blkparse-style whitespace record:
	// ts_ns pid process sector nsectors op major minor [hash], with
	// 512-byte sectors.
	FormatFIU
)

// String returns the format's CLI name ("native", "msr", "fiu").
func (f Format) String() string {
	switch f {
	case FormatMSR:
		return "msr"
	case FormatFIU:
		return "fiu"
	default:
		return "native"
	}
}

// FormatByName maps a CLI name to a Format ("native", "msr", "fiu";
// case-insensitive).
func FormatByName(name string) (Format, error) {
	switch strings.ToLower(strings.TrimSpace(name)) {
	case "native", "leaftl":
		return FormatNative, nil
	case "msr", "msr-cambridge", "csv":
		return FormatMSR, nil
	case "fiu", "blkparse":
		return FormatFIU, nil
	default:
		return FormatNative, fmt.Errorf("trace: unknown format %q (want native, msr, or fiu)", name)
	}
}

// Options controls how byte- and sector-granular formats are normalized
// to page-granular requests. The zero value selects the defaults.
type Options struct {
	// PageSize is the flash page size requests are normalized to
	// (default 4096, the simulator's page size).
	PageSize int
	// SectorSize is the block size of sector-addressed formats (FIU;
	// default 512).
	SectorSize int
}

func (o Options) withDefaults() Options {
	if o.PageSize <= 0 {
		o.PageSize = 4096
	}
	if o.SectorSize <= 0 {
		o.SectorSize = 512
	}
	return o
}

// Decode reads a whole trace in the given format, normalizing every
// record to page granularity and rebasing arrivals so the first request
// arrives at t=0. Arrival timestamps are forced monotonically
// non-decreasing: real traces carry small reordering jitter from
// multi-CPU capture, and open-loop replay needs ordered arrivals, so a
// record arriving before its predecessor is clamped to the
// predecessor's arrival (the order of records is preserved).
func Decode(r io.Reader, f Format, o Options) ([]Request, error) {
	o = o.withDefaults()
	var reqs []Request
	var err error
	switch f {
	case FormatNative:
		reqs, err = Parse(r)
	case FormatMSR:
		reqs, err = decodeMSR(r, o)
	case FormatFIU:
		reqs, err = decodeFIU(r, o)
	default:
		return nil, fmt.Errorf("trace: unknown format %d", f)
	}
	if err != nil {
		return nil, err
	}
	normalizeArrivals(reqs)
	return reqs, nil
}

// Encode writes requests in the given format. Byte-granular formats
// render LPAs and sizes using o.PageSize (and o.SectorSize for FIU), so
// a Decode of the output with the same options round-trips to the same
// requests.
func Encode(w io.Writer, f Format, reqs []Request, o Options) error {
	o = o.withDefaults()
	switch f {
	case FormatNative:
		return encodeNative(w, reqs)
	case FormatMSR:
		return encodeMSR(w, reqs, o)
	case FormatFIU:
		return encodeFIU(w, reqs, o)
	default:
		return fmt.Errorf("trace: unknown format %d", f)
	}
}

// encodeNative writes the timed four-field native form (arrival in
// nanoseconds), the canonical output of tracegen -timestamps.
func encodeNative(w io.Writer, reqs []Request) error {
	bw := bufio.NewWriter(w)
	for _, r := range reqs {
		if _, err := fmt.Fprintf(bw, "%c,%d,%d,%d\n", r.Op, r.LPA, r.Pages, r.Arrival.Nanoseconds()); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Detect guesses the format from a content sample (the first few lines
// of the file). Native and MSR lines are comma-separated with 3–4 and 7
// fields respectively; FIU records are whitespace-separated.
func Detect(sample []byte) (Format, error) {
	for _, line := range strings.Split(string(sample), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if strings.Contains(line, ",") {
			switch n := len(strings.Split(line, ",")); {
			case n >= 6:
				return FormatMSR, nil
			case n == 3 || n == 4:
				return FormatNative, nil
			default:
				return FormatNative, fmt.Errorf("trace: cannot detect format of %q", line)
			}
		}
		if len(strings.Fields(line)) >= 6 {
			return FormatFIU, nil
		}
		return FormatNative, fmt.Errorf("trace: cannot detect format of %q", line)
	}
	return FormatNative, fmt.Errorf("trace: cannot detect format of an empty trace")
}

// Open reads the trace at path, auto-detecting its format from the
// extension (.csv → MSR) and the first lines of content, and returns
// the normalized requests alongside the detected format.
func Open(path string, o Options) ([]Request, Format, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, FormatNative, err
	}
	defer f.Close()

	br := bufio.NewReaderSize(f, 1<<16)
	sample, _ := br.Peek(1 << 14)
	format, err := Detect(sample)
	if err != nil {
		if strings.EqualFold(filepath.Ext(path), ".csv") {
			format = FormatMSR
		} else {
			return nil, FormatNative, fmt.Errorf("%s: %w", path, err)
		}
	}
	reqs, err := Decode(br, format, o)
	if err != nil {
		return nil, format, fmt.Errorf("%s: %w", path, err)
	}
	return reqs, format, nil
}

// normalizeArrivals rebases arrivals to start at zero and clamps any
// backward jump to the previous request's arrival.
func normalizeArrivals(reqs []Request) {
	if len(reqs) == 0 {
		return
	}
	base := reqs[0].Arrival
	prev := time.Duration(0)
	for i := range reqs {
		a := reqs[i].Arrival - base
		if a < prev {
			a = prev
		}
		reqs[i].Arrival = a
		prev = a
	}
}

// FitTo remaps a trace captured on a larger device into logicalPages of
// logical space, folding each request's LPA modulo the capacity (the
// standard down-scaling move for replaying production traces on a
// smaller simulated drive: the access *pattern* — sequentiality,
// strides, hot spots — survives; absolute placement does not). Requests
// larger than the device are an error. The input is not modified.
func FitTo(reqs []Request, logicalPages int) ([]Request, error) {
	if logicalPages <= 0 {
		return nil, fmt.Errorf("trace: cannot fit a trace into %d pages", logicalPages)
	}
	out := make([]Request, len(reqs))
	for i, r := range reqs {
		if r.Pages > logicalPages {
			return nil, fmt.Errorf("trace: request %d (%s) larger than the %d-page device", i, r, logicalPages)
		}
		r.LPA = r.LPA % addr.LPA(logicalPages)
		if int(r.LPA)+r.Pages > logicalPages {
			r.LPA = addr.LPA(logicalPages - r.Pages)
		}
		out[i] = r
	}
	return out, nil
}

// pageSpan converts a byte extent to its covering page extent: the LPA
// of the first touched page and the number of pages touched.
func pageSpan(offset, size int64, pageSize int) (lpa int64, pages int) {
	lpa = offset / int64(pageSize)
	end := offset + size
	pages = int((end - lpa*int64(pageSize) + int64(pageSize) - 1) / int64(pageSize))
	return lpa, pages
}
