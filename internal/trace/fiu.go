package trace

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
	"time"
)

// FIU/blkparse-style records (the FIU home/mail traces of §4.1 and the
// IODedup releases distribute this shape; `blkparse` queue events
// reformat into it, see docs/TRACES.md):
//
//	<ts_ns> <pid> <process> <sector> <nsectors> <R|W> <major> <minor> [hash]
//	329131208190249 4892 syslogd 904265560 8 W 6 0 f3a...
//
// The timestamp is nanoseconds; sector and nsectors are 512-byte
// sectors (Options.SectorSize). Trailing fields beyond the minor device
// number (the dedup content hash) are ignored.

func decodeFIU(r io.Reader, o Options) ([]Request, error) {
	// Arrivals are rebased against the first record before the
	// nanosecond conversion, mirroring decodeMSR: raw uint64 stamps can
	// exceed int64 and must not wrap through time.Duration.
	var base uint64
	haveBase := false
	return decodeLines(r, "fiu", func(line string) (Request, bool, error) {
		parts := strings.Fields(line)
		if len(parts) < 6 {
			return Request{}, false, fmt.Errorf("want at least 6 fields, got %d", len(parts))
		}
		ts, err := strconv.ParseUint(parts[0], 10, 64)
		if err != nil {
			return Request{}, false, fmt.Errorf("bad timestamp: %w", err)
		}
		sector, err := strconv.ParseInt(parts[3], 10, 64)
		if err != nil {
			return Request{}, false, fmt.Errorf("bad sector: %w", err)
		}
		nsectors, err := strconv.ParseInt(parts[4], 10, 64)
		if err != nil {
			return Request{}, false, fmt.Errorf("bad sector count: %w", err)
		}
		op, err := parseOpWord(parts[5])
		if err != nil {
			return Request{}, false, err
		}
		ss := int64(o.SectorSize)
		req, err := byteRequest(op, sector*ss, nsectors*ss, o.PageSize)
		if err != nil {
			return Request{}, false, err
		}
		if !haveBase {
			base, haveBase = ts, true
		}
		var delta uint64
		if ts > base {
			delta = ts - base // backward jitter clamps to the base
		}
		if delta > math.MaxInt64 {
			return Request{}, false, fmt.Errorf("timestamp %d is %dns past the trace start; span unrepresentable", ts, delta)
		}
		req.Arrival = time.Duration(delta)
		return req, true, nil
	})
}

func encodeFIU(w io.Writer, reqs []Request, o Options) error {
	bw := bufio.NewWriter(w)
	perPage := int64(o.PageSize) / int64(o.SectorSize)
	if perPage < 1 {
		perPage = 1
	}
	for _, r := range reqs {
		op := byte('W')
		if r.Op == OpRead {
			op = 'R'
		}
		if _, err := fmt.Fprintf(bw, "%d 0 leaftl %d %d %c 0 0\n",
			r.Arrival.Nanoseconds(), int64(r.LPA)*perPage, int64(r.Pages)*perPage, op); err != nil {
			return err
		}
	}
	return bw.Flush()
}
