package trace

import (
	"errors"
	"strings"
	"testing"
	"time"

	"leaftl/internal/addr"
)

func TestRoundTrip(t *testing.T) {
	reqs := []Request{
		{Op: OpWrite, LPA: 0, Pages: 8},
		{Op: OpRead, LPA: 42, Pages: 1},
		{Op: OpWrite, LPA: 1 << 20, Pages: 64},
	}
	var sb strings.Builder
	if err := Write(&sb, reqs); err != nil {
		t.Fatal(err)
	}
	got, err := Parse(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(reqs) {
		t.Fatalf("parsed %d requests, want %d", len(got), len(reqs))
	}
	for i := range reqs {
		if got[i] != reqs[i] {
			t.Errorf("request %d: got %v, want %v", i, got[i], reqs[i])
		}
	}
}

func TestParseTimedLines(t *testing.T) {
	in := "W,0,8,0\nR,42,1,1000000\n"
	got, err := Parse(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].Arrival != 0 || got[1].Arrival != time.Millisecond {
		t.Errorf("parsed %v", got)
	}
	if !Timed(got) {
		t.Error("Timed = false for a timed trace")
	}
	if Span(got) != time.Millisecond {
		t.Errorf("Span = %v, want 1ms", Span(got))
	}
}

func TestParseCommentsAndBlanks(t *testing.T) {
	in := "# header\n\nW,1,2\n  \nr, 3 , 4\n"
	got, err := Parse(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].Op != OpWrite || got[1].Op != OpRead || got[1].LPA != 3 {
		t.Errorf("parsed %v", got)
	}
}

func TestParseErrors(t *testing.T) {
	for _, in := range []string{
		"X,1,2",      // bad op
		"R,abc,2",    // bad lpa
		"R,1",        // missing field
		"R,1,0",      // zero pages
		"R,1,-3",     // negative pages
		"R,1,2,3,4",  // extra field
		"R,1,2,x",    // bad arrival
		"R,1,2,-100", // negative arrival
	} {
		if _, err := Parse(strings.NewReader(in)); err == nil {
			t.Errorf("Parse(%q) accepted", in)
		}
	}
}

type fakeDev struct {
	reads, writes int
	failAt        int
}

func (f *fakeDev) Read(lpa addr.LPA, pages int) (time.Duration, error) {
	f.reads++
	if f.reads+f.writes == f.failAt {
		return 0, errors.New("boom")
	}
	return time.Microsecond, nil
}

func (f *fakeDev) Write(lpa addr.LPA, pages int) (time.Duration, error) {
	f.writes++
	if f.reads+f.writes == f.failAt {
		return 0, errors.New("boom")
	}
	return time.Microsecond, nil
}

func TestReplay(t *testing.T) {
	d := &fakeDev{}
	reqs := []Request{{Op: OpWrite, LPA: 0, Pages: 1}, {Op: OpRead, LPA: 0, Pages: 1}}
	if err := Replay(d, reqs); err != nil {
		t.Fatal(err)
	}
	if d.reads != 1 || d.writes != 1 {
		t.Errorf("reads=%d writes=%d", d.reads, d.writes)
	}
}

func TestReplayPropagatesError(t *testing.T) {
	d := &fakeDev{failAt: 2}
	reqs := []Request{{Op: OpWrite, LPA: 0, Pages: 1}, {Op: OpRead, LPA: 0, Pages: 1}}
	if err := Replay(d, reqs); err == nil {
		t.Fatal("error swallowed")
	}
}
